"""Sonata's unified query interface (Section 2 of the paper).

The central abstraction is :class:`repro.core.query.PacketStream`: a
declarative dataflow over packet tuples with ``filter``, ``map``, ``reduce``,
``distinct`` and ``join`` operators. Queries built here are target-agnostic;
the planner decides which prefix of each (sub-)query runs on the switch and
which suffix runs at the stream processor.
"""

from repro.core.errors import (
    CompilationError,
    PlanningError,
    QueryValidationError,
    ReproError,
    ResourceExhaustedError,
)
from repro.core.expressions import (
    Const,
    FieldRef,
    Prefixed,
    Quantized,
    Ratio,
    Difference,
)
from repro.core.operators import (
    Distinct,
    Filter,
    Join,
    Map,
    Operator,
    Predicate,
    Reduce,
)
from repro.core.query import PacketStream, Query, SubQuery
from repro.core.serialize import query_from_dict, query_to_dict

__all__ = [
    "PacketStream",
    "Query",
    "SubQuery",
    "Operator",
    "Filter",
    "Map",
    "Reduce",
    "Distinct",
    "Join",
    "Predicate",
    "FieldRef",
    "Const",
    "Prefixed",
    "Quantized",
    "Ratio",
    "Difference",
    "query_to_dict",
    "query_from_dict",
    "ReproError",
    "QueryValidationError",
    "CompilationError",
    "PlanningError",
    "ResourceExhaustedError",
]
