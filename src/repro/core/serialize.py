"""Query (de)serialization to a JSON-friendly dict format.

Lets operators keep telemetry queries in version-controlled files and pass
them to the CLI (``repro plan --query-file``), and lets remote components
(the network-wide collector, a future REST control plane) ship queries
without Python object graphs. The format mirrors the DSL one-to-one::

    {
      "name": "newly_opened", "qid": 1, "window": 3.0,
      "operators": [
        {"op": "filter", "clauses": [["tcp.flags", "eq", 2]]},
        {"op": "map", "keys": ["ipv4.dIP"],
         "values": [{"expr": "const", "value": 1, "name": "count"}]},
        {"op": "reduce", "keys": ["ipv4.dIP"], "func": "sum"},
        {"op": "filter", "clauses": [["count", "gt", 40]]}
      ]
    }

Every operator and expression type of :mod:`repro.core` round-trips;
byte values (payload patterns) are encoded as latin-1 strings under a
``{"bytes": ...}`` wrapper.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import QueryValidationError
from repro.core.expressions import (
    Const,
    Difference,
    Expression,
    FieldRef,
    Prefixed,
    Quantized,
    Ratio,
)
from repro.core.operators import (
    Distinct,
    Filter,
    Join,
    Map,
    Operator,
    Predicate,
    Reduce,
)
from repro.core.query import PacketStream, Query


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"bytes": bytes(value).decode("latin-1")}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"bytes"}:
        return value["bytes"].encode("latin-1")
    return value


# -- expressions -----------------------------------------------------------
def expression_to_dict(expr: Expression) -> dict:
    if isinstance(expr, FieldRef):
        return {"expr": "field", "field": expr.field, "name": expr.rename}
    if isinstance(expr, Const):
        return {"expr": "const", "value": expr.value, "name": expr.rename}
    if isinstance(expr, Prefixed):
        return {
            "expr": "prefix",
            "field": expr.field,
            "level": expr.level,
            "name": expr.rename,
        }
    if isinstance(expr, Quantized):
        return {
            "expr": "quantize",
            "field": expr.field,
            "step": expr.step,
            "name": expr.rename,
        }
    if isinstance(expr, Ratio):
        return {
            "expr": "ratio",
            "numerator": expr.numerator,
            "denominator": expr.denominator,
            "name": expr.rename,
            "scale": expr.scale,
        }
    if isinstance(expr, Difference):
        return {
            "expr": "difference",
            "left": expr.left,
            "right": expr.right,
            "name": expr.rename,
        }
    raise QueryValidationError(f"cannot serialize expression {expr!r}")


def expression_from_dict(data: dict) -> Expression:
    kind = data.get("expr")
    if kind == "field":
        return FieldRef(data["field"], data.get("name"))
    if kind == "const":
        return Const(data["value"], data.get("name") or "count")
    if kind == "prefix":
        return Prefixed(data["field"], data["level"], data.get("name"))
    if kind == "quantize":
        return Quantized(data["field"], data["step"], data.get("name"))
    if kind == "ratio":
        return Ratio(
            data["numerator"],
            data["denominator"],
            data.get("name") or "ratio",
            data.get("scale", 1_000_000),
        )
    if kind == "difference":
        return Difference(data["left"], data["right"], data.get("name") or "diff")
    raise QueryValidationError(f"unknown expression kind {kind!r}")


# -- operators ----------------------------------------------------------------
def _predicate_to_list(pred: Predicate) -> list:
    clause = [pred.field, pred.op, _encode_value(pred.value)]
    if pred.level is not None:
        clause.append(pred.level)
    return clause


def _predicate_from_list(clause: list) -> Predicate:
    if len(clause) == 3:
        field, op, value = clause
        level = None
    elif len(clause) == 4:
        field, op, value, level = clause
    else:
        raise QueryValidationError(f"bad predicate clause {clause!r}")
    return Predicate(field, op, _decode_value(value), level=level)


def operator_to_dict(op: Operator) -> dict:
    if isinstance(op, Filter):
        return {
            "op": "filter",
            "clauses": [_predicate_to_list(p) for p in op.predicates],
        }
    if isinstance(op, Map):
        return {
            "op": "map",
            "keys": [expression_to_dict(e) for e in op.keys],
            "values": [expression_to_dict(e) for e in op.values],
        }
    if isinstance(op, Reduce):
        return {
            "op": "reduce",
            "keys": list(op.keys),
            "func": op.func,
            "value_field": op.value_field,
            "out": op.out,
        }
    if isinstance(op, Distinct):
        return {"op": "distinct", "keys": list(op.keys)}
    if isinstance(op, Join):
        return {
            "op": "join",
            "keys": list(op.keys),
            "how": op.how,
            "right": stream_to_dict(op.right),
        }
    raise QueryValidationError(f"cannot serialize operator {op!r}")


def operator_from_dict(data: dict) -> Operator:
    kind = data.get("op")
    if kind == "filter":
        return Filter(
            tuple(_predicate_from_list(clause) for clause in data["clauses"])
        )
    if kind == "map":
        return Map(
            keys=tuple(expression_from_dict(e) for e in data.get("keys", [])),
            values=tuple(expression_from_dict(e) for e in data.get("values", [])),
        )
    if kind == "reduce":
        return Reduce(
            keys=tuple(data["keys"]),
            func=data.get("func", "sum"),
            value_field=data.get("value_field"),
            out=data.get("out", "count"),
        )
    if kind == "distinct":
        return Distinct(keys=tuple(data.get("keys", ())))
    if kind == "join":
        return Join(
            right=stream_from_dict(data["right"]),
            keys=tuple(data["keys"]),
            how=data.get("how", "inner"),
        )
    raise QueryValidationError(f"unknown operator kind {kind!r}")


# -- streams / queries ----------------------------------------------------
def stream_to_dict(stream: PacketStream) -> dict:
    return {
        "name": stream.name,
        "qid": stream.qid,
        "window": stream.window,
        "operators": [operator_to_dict(op) for op in stream.operators],
    }


def stream_from_dict(data: dict) -> PacketStream:
    stream = PacketStream(
        name=data.get("name", "query"),
        qid=data.get("qid"),
        window=data.get("window", 3.0),
    )
    stream.operators = tuple(
        operator_from_dict(op) for op in data.get("operators", [])
    )
    return stream


def query_to_dict(query: Query) -> dict:
    """Serialize a validated query."""
    return stream_to_dict(query.stream)


def query_from_dict(data: dict) -> Query:
    """Deserialize and validate a query."""
    return Query(stream_from_dict(data))
