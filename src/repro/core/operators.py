"""Dataflow operators: filter, map, reduce, distinct, join (§2.1).

Operators are immutable descriptions; execution lives in the engines
(:mod:`repro.streaming`, :mod:`repro.analytics`, :mod:`repro.switch`). Each
operator can compute its output :class:`Schema` from an input schema, report
whether it is stateful, and report whether a given switch target can execute
it — the two facts the query planner needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.errors import QueryValidationError
from repro.core.expressions import Expression, as_expression
from repro.core.fields import FieldRegistry, FIELDS, coarsen_value


@dataclass(frozen=True)
class Schema:
    """The shape of tuples flowing between operators.

    ``keys`` identify the grouping part of the tuple and ``values`` the
    aggregation part; ``widths`` gives per-field bit widths for data-plane
    metadata accounting. The initial packet-stream schema exposes every
    registered packet field as a key.
    """

    keys: tuple[str, ...]
    values: tuple[str, ...]
    widths: Mapping[str, int]

    @property
    def fields(self) -> tuple[str, ...]:
        return self.keys + self.values

    def has(self, name: str) -> bool:
        return name in self.keys or name in self.values

    def width_of(self, name: str) -> int:
        if name not in self.widths:
            raise QueryValidationError(f"schema has no field {name!r}")
        return self.widths[name]

    def total_width(self) -> int:
        return sum(self.widths[name] for name in self.fields)

    @staticmethod
    def packet_schema(registry: FieldRegistry = FIELDS) -> "Schema":
        names = tuple(registry.names())
        widths = {name: registry.get(name).width for name in names}
        return Schema(keys=names, values=(), widths=widths)


#: Comparison operators understood by predicates. ``in`` matches membership
#: in a named, runtime-updatable filter table (used by dynamic refinement).
_PREDICATE_OPS = ("eq", "ne", "gt", "ge", "lt", "le", "mask", "contains", "in")


@dataclass(frozen=True)
class Predicate:
    """A single comparison clause inside a :class:`Filter`.

    Attributes:
        field: Tuple field the clause reads.
        op: One of ``eq ne gt ge lt le mask contains in``. ``mask`` tests
            ``field & value == value`` (TCP-flag tests); ``contains`` is a
            byte-substring test (stream processor only); ``in`` tests
            membership of the (optionally coarsened) field value in a named
            filter table whose contents the runtime updates every window.
        value: Comparison constant, byte pattern, or filter-table name.
        level: If set, coarsen the field to this refinement level before
            comparing — this is how the level-(i+1) query matches the
            level-i results without rewriting the rest of the query.
    """

    field: str
    op: str
    value: Any
    level: int | None = None

    def __post_init__(self) -> None:
        if self.op not in _PREDICATE_OPS:
            raise QueryValidationError(f"unknown predicate op {self.op!r}")
        if self.op == "in" and not isinstance(self.value, str):
            raise QueryValidationError("'in' predicates take a filter-table name")

    # -- single-tuple evaluation --------------------------------------
    def evaluate(self, tup: Mapping[str, Any], tables: Mapping[str, set] | None = None) -> bool:
        value = tup[self.field]
        if self.level is not None and self.field in FIELDS:
            value = coarsen_value(FIELDS.get(self.field), value, self.level)
        if self.op == "eq":
            return value == self.value
        if self.op == "ne":
            return value != self.value
        if self.op == "gt":
            return value > self.value
        if self.op == "ge":
            return value >= self.value
        if self.op == "lt":
            return value < self.value
        if self.op == "le":
            return value <= self.value
        if self.op == "mask":
            return (value & self.value) == self.value
        if self.op == "contains":
            haystack = value if isinstance(value, (bytes, bytearray)) else bytes(
                str(value), "utf-8"
            )
            needle = (
                self.value
                if isinstance(self.value, (bytes, bytearray))
                else str(self.value).encode("utf-8")
            )
            return needle in haystack
        if self.op == "in":
            table = (tables or {}).get(self.value)
            if table is None:
                return False
            return value in table
        raise AssertionError(self.op)

    # -- columnar evaluation -------------------------------------------
    def evaluate_columnar(
        self,
        columns: Mapping[str, np.ndarray],
        tables: Mapping[str, set] | None = None,
        side_tables: Mapping[str, list] | None = None,
    ) -> np.ndarray:
        col = columns[self.field]
        if self.level is not None and self.field in FIELDS:
            spec = FIELDS.get(self.field)
            if spec.kind == "int":
                if self.level == 0:
                    col = np.zeros_like(col)
                else:
                    mask = ((1 << self.level) - 1) << (spec.width - self.level)
                    col = col & np.array(mask, dtype=col.dtype)
            else:
                raise QueryValidationError(
                    "columnar coarsened predicates require int fields"
                )
        if self.op == "eq":
            return col == self.value
        if self.op == "ne":
            return col != self.value
        if self.op == "gt":
            return col > self.value
        if self.op == "ge":
            return col >= self.value
        if self.op == "lt":
            return col < self.value
        if self.op == "le":
            return col <= self.value
        if self.op == "mask":
            return (col & self.value) == self.value
        if self.op == "in":
            table = (tables or {}).get(self.value)
            if not table:
                return np.zeros(len(col), dtype=bool)
            return np.isin(col, np.fromiter(table, dtype=np.int64, count=len(table)))
        if self.op == "contains":
            payloads = (side_tables or {}).get("payloads")
            if payloads is None:
                return np.zeros(len(col), dtype=bool)
            needle = (
                self.value
                if isinstance(self.value, (bytes, bytearray))
                else str(self.value).encode("utf-8")
            )
            out = np.zeros(len(col), dtype=bool)
            for i, payload_id in enumerate(col):
                if payload_id >= 0 and needle in payloads[payload_id]:
                    out[i] = True
            return out
        raise AssertionError(self.op)

    def switch_supported(self, registry: FieldRegistry = FIELDS) -> bool:
        if self.op == "contains":
            return False
        if self.field in registry and not registry.get(self.field).switch_parseable:
            return False
        return True

    def describe(self) -> str:
        suffix = f"/{self.level}" if self.level is not None else ""
        return f"{self.field}{suffix} {self.op} {self.value!r}"


class Operator:
    """Base class for dataflow operators."""

    #: Whether the operator keeps state across packets of a window.
    stateful: bool = False

    def output_schema(self, schema: Schema) -> Schema:
        raise NotImplementedError

    def validate(self, schema: Schema) -> None:
        """Raise :class:`QueryValidationError` if inputs are missing."""
        for name in self.input_fields():
            if not schema.has(name):
                raise QueryValidationError(
                    f"{type(self).__name__} reads {name!r} but the incoming "
                    f"schema only has {schema.fields}"
                )

    def input_fields(self) -> tuple[str, ...]:
        raise NotImplementedError

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.describe()}>"


@dataclass(frozen=True, repr=False)
class Filter(Operator):
    """Keep tuples matching *all* predicates (conjunction).

    A disjunction is expressed as multiple rules of one match-action table
    on the switch, or as multiple Sonata queries; the Table 3 queries only
    need conjunctions.
    """

    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise QueryValidationError("filter needs at least one predicate")

    def input_fields(self) -> tuple[str, ...]:
        return tuple(p.field for p in self.predicates)

    def output_schema(self, schema: Schema) -> Schema:
        return schema

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        return all(p.switch_supported(registry) for p in self.predicates)

    def describe(self) -> str:
        return "filter(" + " and ".join(p.describe() for p in self.predicates) + ")"


@dataclass(frozen=True, repr=False)
class Map(Operator):
    """Project/transform tuples into ``(keys..., values...)``."""

    keys: tuple[Expression, ...]
    values: tuple[Expression, ...] = ()

    def __post_init__(self) -> None:
        # Accept bare field names anywhere an expression is expected.
        object.__setattr__(self, "keys", tuple(as_expression(k) for k in self.keys))
        object.__setattr__(
            self, "values", tuple(as_expression(v) for v in self.values)
        )
        if not self.keys and not self.values:
            raise QueryValidationError("map must produce at least one field")
        names = [e.name for e in self.keys + self.values]
        if len(names) != len(set(names)):
            raise QueryValidationError(f"map produces duplicate field names: {names}")

    def input_fields(self) -> tuple[str, ...]:
        seen: list[str] = []
        for expr in self.keys + self.values:
            for name in expr.inputs():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def output_schema(self, schema: Schema) -> Schema:
        widths = {}
        for expr in self.keys + self.values:
            widths[expr.name] = expr.width()
        return Schema(
            keys=tuple(e.name for e in self.keys),
            values=tuple(e.name for e in self.values),
            widths=widths,
        )

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        for expr in self.keys + self.values:
            if not expr.switch_supported:
                return False
            for name in expr.inputs():
                if name in registry and not registry.get(name).switch_parseable:
                    return False
        return True

    def describe(self) -> str:
        parts = [e.name for e in self.keys]
        parts += [f"{e.name}=" for e in self.values]
        return "map(" + ", ".join(parts) + ")"


_REDUCE_FUNCS = ("sum", "max", "min", "count", "or")


@dataclass(frozen=True, repr=False)
class Reduce(Operator):
    """Aggregate the value field grouped by ``keys`` within the window.

    On the switch this compiles to a register (index table + update table);
    at the stream processor it is a keyed aggregation. ``func='or'`` with a
    1-bit value is how :class:`Distinct` is implemented on the switch
    (§3.1.2: "Distinct operations are similar to a reduce, where the
    function bit_or ... is applied to a single bit").
    """

    keys: tuple[str, ...]
    func: str = "sum"
    value_field: str | None = None
    out: str = "count"

    stateful = True

    def __post_init__(self) -> None:
        if self.func not in _REDUCE_FUNCS:
            raise QueryValidationError(f"unknown reduce function {self.func!r}")
        if not self.keys:
            raise QueryValidationError("reduce needs at least one key")

    def input_fields(self) -> tuple[str, ...]:
        extra = (self.value_field,) if self.value_field else ()
        return self.keys + extra

    def resolved_value_field(self, schema: Schema) -> str | None:
        """The field being aggregated, or None for pure counting."""
        if self.value_field:
            return self.value_field
        if self.func == "count":
            return None
        if len(schema.values) == 1:
            return schema.values[0]
        if not schema.values:
            return None
        raise QueryValidationError(
            f"reduce({self.func}) is ambiguous: schema values {schema.values}; "
            "pass value_field explicitly"
        )

    def output_schema(self, schema: Schema) -> Schema:
        widths = {name: schema.width_of(name) for name in self.keys}
        widths[self.out] = 32
        return Schema(keys=self.keys, values=(self.out,), widths=widths)

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        for name in self.keys:
            if name in registry and not registry.get(name).switch_parseable:
                return False
        return True  # sum/max/min/or/count all map to register ALU ops

    def describe(self) -> str:
        value = self.value_field or ""
        return f"reduce(keys=({', '.join(self.keys)}), {self.func}{value and ' ' + value})"


@dataclass(frozen=True, repr=False)
class Distinct(Operator):
    """Emit each distinct key combination once per window."""

    keys: tuple[str, ...] = ()

    stateful = True

    def input_fields(self) -> tuple[str, ...]:
        return self.keys

    def effective_keys(self, schema: Schema) -> tuple[str, ...]:
        return self.keys or schema.fields

    def output_schema(self, schema: Schema) -> Schema:
        keys = self.effective_keys(schema)
        widths = {name: schema.width_of(name) for name in keys}
        return Schema(keys=keys, values=(), widths=widths)

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        for name in self.keys:
            if name in registry and not registry.get(name).switch_parseable:
                return False
        return True

    def describe(self) -> str:
        return f"distinct({', '.join(self.keys)})"


@dataclass(frozen=True, repr=False)
class Join(Operator):
    """Join this stream with another sub-query's output on ``keys``.

    Joins always run at the stream processor (§3.1.2: worst-case state grows
    with the square of the number of packets). The planner splits a query at
    each join and plans the two sides independently, constrained to share a
    refinement plan (§4.2).
    """

    right: "Any"  # PacketStream; typed loosely to avoid a circular import
    keys: tuple[str, ...]
    how: str = "inner"

    def __post_init__(self) -> None:
        if self.how not in ("inner", "left"):
            raise QueryValidationError(f"unsupported join type {self.how!r}")
        if not self.keys:
            raise QueryValidationError("join needs at least one key")

    def input_fields(self) -> tuple[str, ...]:
        return self.keys

    def output_schema(self, schema: Schema) -> Schema:
        right_schema = self.right.output_schema()
        for key in self.keys:
            if not right_schema.has(key):
                raise QueryValidationError(
                    f"join key {key!r} missing from right sub-query schema "
                    f"{right_schema.fields}"
                )
        # The joined tuple keeps every left-side field (Query 3 filters the
        # packet payload *after* its join) plus the right side's non-key
        # fields, renamed with an ``_r`` suffix on collision — mirroring
        # the row-level merge in :func:`repro.streaming.rowops.join_rows`.
        widths = {name: schema.width_of(name) for name in self.keys}
        values: list[str] = []
        for name in schema.fields:
            if name in self.keys:
                continue
            widths[name] = schema.width_of(name)
            values.append(name)
        for name in right_schema.fields:
            if name in self.keys:
                continue
            out_name = name if name not in widths else f"{name}_r"
            widths[out_name] = right_schema.width_of(name)
            values.append(out_name)
        return Schema(keys=self.keys, values=tuple(values), widths=widths)

    def switch_compilable(self, registry: FieldRegistry = FIELDS) -> bool:
        return False

    def describe(self) -> str:
        return f"join(keys=({', '.join(self.keys)}))"


def ensure_expressions(specs: tuple) -> tuple[Expression, ...]:
    """Coerce a mixed tuple of names/expressions into expressions."""
    return tuple(as_expression(spec) for spec in specs)
