"""The packet-field registry: Sonata's extensible tuple abstraction (§2.1).

Packet headers naturally form key-value tuples; this module is the single
source of truth for which fields exist, how wide they are, whether a
programmable switch can parse them, which column of the columnar trace
stores them, and whether they are *hierarchical* (and therefore usable as
dynamic-refinement keys, §4.1).

New fields can be registered at runtime — mirroring the paper's "extensible
tuple abstraction" in which operators extend the parser with custom P4 —
and every downstream component (query validation, the switch parser, the
P4 generator, the columnar engine) picks them up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import QueryValidationError


@dataclass(frozen=True)
class FieldSpec:
    """Static description of one packet field.

    Attributes:
        name: Dotted query-facing name, e.g. ``"ipv4.dIP"``.
        width: Width in bits as seen by the switch (used for metadata and
            register sizing). For variable-length fields (payload, DNS
            names) this is the width of the digest the switch would carry.
        column: Column name in the columnar trace that stores the field.
        kind: ``"int"``, ``"str"`` or ``"bytes"`` — the Python-side type.
        switch_parseable: Whether a PISA parser can extract the field.
            Payload contents cannot be parsed at line rate, so queries
            touching them are pinned to the stream processor from the first
            operator that needs them.
        hierarchy: Refinement levels, coarsest → finest, when the field has
            hierarchical structure (e.g. IPv4 prefixes, DNS label depth).
            Empty tuple means the field cannot serve as a refinement key.
        protocol: Header the field belongs to (``"ipv4"``, ``"tcp"``, ...);
            used by the parser model to account parse-graph depth.
    """

    name: str
    width: int
    column: str
    kind: str = "int"
    switch_parseable: bool = True
    hierarchy: tuple[int, ...] = ()
    protocol: str = "meta"

    @property
    def hierarchical(self) -> bool:
        return bool(self.hierarchy)


class FieldRegistry:
    """Mutable registry of :class:`FieldSpec` keyed by dotted name."""

    def __init__(self) -> None:
        self._specs: dict[str, FieldSpec] = {}

    def register(self, spec: FieldSpec) -> FieldSpec:
        if spec.name in self._specs:
            raise QueryValidationError(f"field already registered: {spec.name}")
        if spec.width <= 0:
            raise QueryValidationError(f"field {spec.name} has non-positive width")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> FieldSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise QueryValidationError(
                f"unknown packet field {name!r}; known fields: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> list[str]:
        return sorted(self._specs)

    def specs(self) -> list[FieldSpec]:
        return [self._specs[name] for name in sorted(self._specs)]

    def columns(self) -> dict[str, str]:
        """Map dotted field name -> trace column name."""
        return {spec.name: spec.column for spec in self._specs.values()}


#: The default registry with the fields used by the Table 3 queries.
FIELDS = FieldRegistry()

# -- metadata / frame-level ------------------------------------------------
FIELDS.register(FieldSpec("ts", 64, "ts", kind="int", protocol="meta"))
FIELDS.register(FieldSpec("pktlen", 16, "pktlen", protocol="meta"))

# -- IPv4 ------------------------------------------------------------------
_IPV4_LEVELS = tuple(range(4, 33, 4))  # /4, /8, ..., /32
FIELDS.register(
    FieldSpec("ipv4.sIP", 32, "sip", hierarchy=_IPV4_LEVELS, protocol="ipv4")
)
FIELDS.register(
    FieldSpec("ipv4.dIP", 32, "dip", hierarchy=_IPV4_LEVELS, protocol="ipv4")
)
FIELDS.register(FieldSpec("ipv4.proto", 8, "proto", protocol="ipv4"))
FIELDS.register(FieldSpec("ipv4.ttl", 8, "ttl", protocol="ipv4"))

# -- TCP -------------------------------------------------------------------
FIELDS.register(FieldSpec("tcp.sPort", 16, "sport", protocol="tcp"))
FIELDS.register(FieldSpec("tcp.dPort", 16, "dport", protocol="tcp"))
FIELDS.register(FieldSpec("tcp.flags", 8, "tcpflags", protocol="tcp"))

# -- UDP (shares the port columns with TCP, as in a 5-tuple trace) ---------
FIELDS.register(FieldSpec("udp.sPort", 16, "sport", protocol="udp"))
FIELDS.register(FieldSpec("udp.dPort", 16, "dport", protocol="udp"))

# -- DNS -------------------------------------------------------------------
# dns.rr.name is hierarchical by label depth: level 1 = TLD, 2 = second-level
# domain, ... (the paper: "a fully-qualified domain name is the finest
# refinement level and the root domain is the coarsest").
FIELDS.register(
    FieldSpec(
        "dns.rr.name",
        64,
        "dns_name_id",
        kind="str",
        hierarchy=(1, 2, 3, 4),
        protocol="dns",
    )
)
FIELDS.register(FieldSpec("dns.qtype", 16, "dns_qtype", protocol="dns"))
FIELDS.register(FieldSpec("dns.ancount", 16, "dns_ancount", protocol="dns"))
FIELDS.register(FieldSpec("dns.qr", 1, "dns_qr", protocol="dns"))

# -- payload ---------------------------------------------------------------
# The packet payload cannot be parsed by a PISA switch at line rate; any
# operator touching it (e.g. Query 3's ``payload.contains('zorro')``) is
# pinned to the stream processor.
FIELDS.register(
    FieldSpec(
        "payload",
        0x800,
        "payload_id",
        kind="bytes",
        switch_parseable=False,
        protocol="payload",
    )
)


#: TCP flag bit values, for readability in queries.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_SYNACK = TCP_SYN | TCP_ACK

#: IP protocol numbers.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


def coarsen_value(spec: FieldSpec, value: int | str, level: int) -> int | str:
    """Coarsen ``value`` of a hierarchical field to refinement ``level``.

    For IPv4 fields this masks to a /level prefix; for DNS names it keeps
    the last ``level`` labels. Raises if the field is not hierarchical.
    """
    if not spec.hierarchical:
        raise QueryValidationError(f"field {spec.name} is not hierarchical")
    if spec.kind == "int":
        if not 0 <= level <= spec.width:
            raise QueryValidationError(
                f"refinement level {level} out of range for {spec.name}"
            )
        if level == 0:
            return 0
        mask = ((1 << level) - 1) << (spec.width - level)
        return int(value) & mask
    if spec.kind == "str":
        labels = [label for label in str(value).split(".") if label]
        if level <= 0:
            return "."
        return ".".join(labels[-level:]) if labels else "."
    raise QueryValidationError(f"cannot coarsen field of kind {spec.kind}")


_REGISTRY_DEFAULT = FIELDS

__all__ = [
    "FieldSpec",
    "FieldRegistry",
    "FIELDS",
    "coarsen_value",
    "TCP_FIN",
    "TCP_SYN",
    "TCP_RST",
    "TCP_PSH",
    "TCP_ACK",
    "TCP_SYNACK",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
]
