"""Value expressions usable inside ``map`` operators and predicates.

Sonata's published queries use lambdas (``p => (p.dIP, 1)``); to compile to
a switch the transformations must instead be *declarative*, which is also
how the released Sonata prototype works. Each expression knows:

- how to evaluate itself on a single tuple (``evaluate``),
- how to evaluate itself on numpy columns (``evaluate_columnar``),
- whether a PISA switch can perform it (``switch_supported``) — e.g.
  division is not supported in the data plane, which is exactly why the
  Slowloris query (Query 2) must finish at the stream processor,
- which input fields it reads (``inputs``) and its output name and width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.errors import QueryValidationError
from repro.core.fields import FieldRegistry, FIELDS, coarsen_value


class Expression:
    """Base class for map/predicate value expressions."""

    #: Name of the produced tuple field.
    name: str

    def inputs(self) -> tuple[str, ...]:
        raise NotImplementedError

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    @property
    def switch_supported(self) -> bool:
        raise NotImplementedError

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        """Bit width of the produced value, for metadata accounting."""
        raise NotImplementedError


@dataclass(frozen=True)
class FieldRef(Expression):
    """Pass a tuple field through unchanged (optionally renamed)."""

    field: str
    rename: str | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename or self.field

    def inputs(self) -> tuple[str, ...]:
        return (self.field,)

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        return tup[self.field]

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return columns[self.field]

    @property
    def switch_supported(self) -> bool:
        return True

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        if self.field in registry:
            return registry.get(self.field).width
        return 32  # derived field default


@dataclass(frozen=True)
class Const(Expression):
    """A constant value, e.g. the literal 1 in ``map(p => (p.dIP, 1))``."""

    value: int
    rename: str = "count"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename

    def inputs(self) -> tuple[str, ...]:
        return ()

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        return self.value

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        length = len(next(iter(columns.values()))) if columns else 0
        return np.full(length, self.value, dtype=np.int64)

    @property
    def switch_supported(self) -> bool:
        return True

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        return max(int(self.value).bit_length(), 1)


@dataclass(frozen=True)
class Prefixed(Expression):
    """Coarsen a hierarchical field to a refinement level (e.g. dIP → dIP/8).

    On the switch this is a bitwise AND with a mask — always supported.
    This is the expression the planner inserts when augmenting queries for
    dynamic refinement (Figure 4).
    """

    field: str
    level: int
    rename: str | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename or self.field

    def inputs(self) -> tuple[str, ...]:
        return (self.field,)

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        spec = FIELDS.get(self.field)
        return coarsen_value(spec, tup[self.field], self.level)

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        spec = FIELDS.get(self.field)
        if spec.kind != "int":
            raise QueryValidationError(
                f"columnar coarsening only supports int fields, not {spec.kind}"
            )
        if self.level == 0:
            return np.zeros_like(columns[self.field])
        mask = ((1 << self.level) - 1) << (spec.width - self.level)
        return columns[self.field] & np.array(mask, dtype=columns[self.field].dtype)

    @property
    def switch_supported(self) -> bool:
        return True

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        return registry.get(self.field).width


@dataclass(frozen=True)
class Quantized(Expression):
    """Round a numeric field down to a multiple of ``step``.

    Used by the Zorro query (Query 3): ``p.nBytes / N`` buckets packet
    lengths. A switch supports this when ``step`` is a power of two (a
    shift); otherwise the expression is pinned to the stream processor.
    """

    field: str
    step: int
    rename: str | None = None

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise QueryValidationError("quantization step must be positive")

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename or self.field

    def inputs(self) -> tuple[str, ...]:
        return (self.field,)

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        return (int(tup[self.field]) // self.step) * self.step

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        col = columns[self.field].astype(np.int64)
        return (col // self.step) * self.step

    @property
    def switch_supported(self) -> bool:
        return self.step & (self.step - 1) == 0  # power of two → shift+mask

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        if self.field in registry:
            return registry.get(self.field).width
        return 32


@dataclass(frozen=True)
class Ratio(Expression):
    """``numerator / denominator`` over two tuple fields.

    Division is *not* available in PISA data planes (the paper uses this to
    motivate why Query 2 cannot run entirely on a Tofino), so
    ``switch_supported`` is False.
    """

    numerator: str
    denominator: str
    rename: str = "ratio"
    scale: int = 1_000_000  # fixed-point scale so results stay integral

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename

    def inputs(self) -> tuple[str, ...]:
        return (self.numerator, self.denominator)

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        denom = tup[self.denominator]
        if denom == 0:
            return 0
        return (tup[self.numerator] * self.scale) // denom

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        num = columns[self.numerator].astype(np.int64) * self.scale
        den = columns[self.denominator].astype(np.int64)
        out = np.zeros_like(num)
        nonzero = den != 0
        out[nonzero] = num[nonzero] // den[nonzero]
        return out

    @property
    def switch_supported(self) -> bool:
        return False

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        return 64


@dataclass(frozen=True)
class Difference(Expression):
    """``left - right`` over two tuple fields (e.g. #SYN − #FIN)."""

    left: str
    right: str
    rename: str = "diff"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.rename

    def inputs(self) -> tuple[str, ...]:
        return (self.left, self.right)

    def evaluate(self, tup: Mapping[str, Any]) -> Any:
        return tup[self.left] - tup[self.right]

    def evaluate_columnar(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return columns[self.left].astype(np.int64) - columns[self.right].astype(
            np.int64
        )

    @property
    def switch_supported(self) -> bool:
        return True  # subtraction exists in the data plane

    def width(self, registry: FieldRegistry = FIELDS) -> int:
        return 32


def as_expression(spec: "str | Expression") -> Expression:
    """Coerce a bare field name into a :class:`FieldRef`."""
    if isinstance(spec, Expression):
        return spec
    if isinstance(spec, str):
        return FieldRef(spec)
    raise QueryValidationError(f"cannot interpret {spec!r} as a map expression")
