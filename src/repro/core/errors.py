"""Exception hierarchy for the Sonata reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch one type. Subclasses separate the
three phases where things go wrong: query construction, compilation to a
target, and query planning / plan installation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class QueryValidationError(ReproError):
    """A query is malformed: unknown field, bad operator composition, etc."""


class CompilationError(ReproError):
    """An operator (or query) cannot be compiled to the requested target."""


class PlanningError(ReproError):
    """The query planner failed to produce a plan (infeasible ILP, etc.)."""


class ResourceExhaustedError(ReproError):
    """A data-plane resource constraint (S, A, B, M) was violated at install."""


class TraceFormatError(ReproError):
    """A trace file or pcap stream is malformed or unsupported."""
