"""The ``PacketStream`` query DSL and query decomposition (§2).

A query is an ordered chain of dataflow operators over the packet stream::

    q = (PacketStream(name="newly_opened")
         .filter(("tcp.flags", "eq", TCP_SYN))
         .map(keys=("ipv4.dIP",), values=(Const(1),))
         .reduce(keys=("ipv4.dIP",), func="sum")
         .filter(("count", "gt", 40)))

``PacketStream`` is immutable: every operator call returns a new stream, so
partially-built queries can be shared. :class:`Query` is the planner-facing
wrapper that validates the chain, decomposes it at joins into linear
:class:`SubQuery` chains (joins always execute at the stream processor,
§3.1.2), and exposes refinement-key candidates (§4.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.errors import QueryValidationError
from repro.core.fields import FieldRegistry, FIELDS
from repro.core.operators import (
    Distinct,
    Filter,
    Join,
    Map,
    Operator,
    Predicate,
    Reduce,
    Schema,
    ensure_expressions,
)

_qid_counter = itertools.count(1)


def _coerce_predicates(args: tuple, level: int | None) -> tuple[Predicate, ...]:
    """Accept ``Predicate`` objects or ``(field, op, value)`` triples."""
    predicates: list[Predicate] = []
    for arg in args:
        if isinstance(arg, Predicate):
            predicates.append(arg)
        elif isinstance(arg, tuple) and len(arg) == 3:
            predicates.append(Predicate(arg[0], arg[1], arg[2], level=level))
        else:
            raise QueryValidationError(
                f"filter clause must be a Predicate or (field, op, value): {arg!r}"
            )
    return tuple(predicates)


class PacketStream:
    """An immutable chain of dataflow operators over the packet stream."""

    def __init__(
        self,
        name: str = "query",
        qid: int | None = None,
        window: float = 3.0,
        operators: tuple[Operator, ...] = (),
        registry: FieldRegistry = FIELDS,
    ) -> None:
        self.name = name
        self.qid = qid if qid is not None else next(_qid_counter)
        self.window = window
        self.operators = operators
        self.registry = registry

    # -- chaining -----------------------------------------------------
    def _extend(self, op: Operator) -> "PacketStream":
        return PacketStream(
            name=self.name,
            qid=self.qid,
            window=self.window,
            operators=self.operators + (op,),
            registry=self.registry,
        )

    def filter(self, *clauses: Any, level: int | None = None) -> "PacketStream":
        """Append a filter; clauses are ANDed ``(field, op, value)`` triples."""
        return self._extend(Filter(_coerce_predicates(clauses, level)))

    def map(
        self,
        keys: Sequence[Any] = (),
        values: Sequence[Any] = (),
    ) -> "PacketStream":
        """Append a projection/transformation to ``(keys..., values...)``."""
        return self._extend(
            Map(keys=ensure_expressions(tuple(keys)), values=ensure_expressions(tuple(values)))
        )

    def reduce(
        self,
        keys: Sequence[str],
        func: str = "sum",
        value_field: str | None = None,
        out: str = "count",
    ) -> "PacketStream":
        """Append a keyed aggregation over the window."""
        return self._extend(
            Reduce(keys=tuple(keys), func=func, value_field=value_field, out=out)
        )

    def distinct(self, keys: Sequence[str] = ()) -> "PacketStream":
        """Append per-window deduplication on ``keys`` (default all fields)."""
        return self._extend(Distinct(keys=tuple(keys)))

    def join(
        self, other: "PacketStream", keys: Sequence[str], how: str = "inner"
    ) -> "PacketStream":
        """Join with the output of another sub-query on ``keys``."""
        return self._extend(Join(right=other, keys=tuple(keys), how=how))

    # -- introspection --------------------------------------------------
    def schemas(self) -> list[Schema]:
        """Schema *after* each operator (index 0 = packet schema)."""
        schema = Schema.packet_schema(self.registry)
        out = [schema]
        for op in self.operators:
            op.validate(schema)
            schema = op.output_schema(schema)
            out.append(schema)
        return out

    def output_schema(self) -> Schema:
        return self.schemas()[-1]

    def validate(self) -> None:
        """Raise QueryValidationError on any schema mismatch in the chain."""
        self.schemas()
        for op in self.operators:
            if isinstance(op, Join):
                op.right.validate()

    def describe(self) -> str:
        return " -> ".join(op.describe() for op in self.operators) or "packetStream"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketStream({self.name!r}, qid={self.qid}, {self.describe()})"


@dataclass(frozen=True)
class SubQuery:
    """A linear (join-free) operator chain — the planner's unit of work.

    ``qid`` identifies the parent query; ``subid`` distinguishes the
    sub-queries produced by join decomposition. The data plane and the cost
    model both operate on sub-queries.
    """

    qid: int
    subid: int
    name: str
    operators: tuple[Operator, ...]
    window: float
    registry: FieldRegistry = FIELDS

    @property
    def key(self) -> tuple[int, int]:
        return (self.qid, self.subid)

    def schemas(self) -> list[Schema]:
        schema = Schema.packet_schema(self.registry)
        out = [schema]
        for op in self.operators:
            op.validate(schema)
            schema = op.output_schema(schema)
            out.append(schema)
        return out

    def output_schema(self) -> Schema:
        return self.schemas()[-1]

    def stateful_operators(self) -> list[Operator]:
        return [op for op in self.operators if op.stateful]

    def refinement_key_candidates(self) -> list[str]:
        """Hierarchical fields usable as refinement keys (§4.1).

        Only keys of the *last* stateful operator qualify: replacing that
        key with a coarser version can only merge aggregates upward, so a
        ``count > Th`` filter can never miss traffic. Coarsening a
        mid-chain distinct key (e.g. dIP in the superspreader query) could
        merge distinct elements and *reduce* the final count — unsafe.
        """
        schemas = self.schemas()
        last: tuple[Operator, Schema] | None = None
        for op, schema in zip(self.operators, schemas):
            if op.stateful:
                last = (op, schema)
        if last is None:
            return []
        op, schema = last
        if isinstance(op, Reduce):
            keys: Iterable[str] = op.keys
        else:
            assert isinstance(op, Distinct)
            keys = op.effective_keys(schema)
        candidates: list[str] = []
        for key in keys:
            if key in self.registry and self.registry.get(key).hierarchical:
                if key not in candidates:
                    candidates.append(key)
        return candidates

    def describe(self) -> str:
        return " -> ".join(op.describe() for op in self.operators)


@dataclass(frozen=True)
class JoinNode:
    """A node of the stream-processor join tree.

    ``left``/``right`` are either ``int`` sub-query ids (leaves, referring
    to ``Query.subqueries``) or nested :class:`JoinNode`. ``post_ops`` are
    the operators applied to the joined stream before the next join (or the
    query output).
    """

    left: "int | JoinNode"
    right: "int | JoinNode"
    keys: tuple[str, ...]
    how: str
    post_ops: tuple[Operator, ...]


class Query:
    """A validated query plus its join decomposition."""

    def __init__(self, stream: PacketStream) -> None:
        stream.validate()
        self.stream = stream
        self.name = stream.name
        self.qid = stream.qid
        self.window = stream.window
        self.subqueries: list[SubQuery] = []
        self._subid_counter = itertools.count(0)
        self.join_tree: int | JoinNode = self._decompose(stream)

    # -- decomposition ---------------------------------------------------
    def _new_subquery(self, ops: tuple[Operator, ...], label: str) -> int:
        subid = next(self._subid_counter)
        self.subqueries.append(
            SubQuery(
                qid=self.qid,
                subid=subid,
                name=f"{self.name}.{label}{subid}",
                operators=ops,
                window=self.window,
                registry=self.stream.registry,
            )
        )
        return subid

    def _decompose(self, stream: PacketStream) -> int | JoinNode:
        """Split the operator chain at joins into linear sub-queries."""
        ops = stream.operators
        join_positions = [i for i, op in enumerate(ops) if isinstance(op, Join)]
        if not join_positions:
            return self._new_subquery(ops, "sq")

        first = join_positions[0]
        node: int | JoinNode = self._new_subquery(ops[:first], "sq")
        index = first
        while index < len(ops):
            join = ops[index]
            assert isinstance(join, Join)
            right_node = self._decompose(join.right)
            next_join = next(
                (i for i in range(index + 1, len(ops)) if isinstance(ops[i], Join)),
                len(ops),
            )
            node = JoinNode(
                left=node,
                right=right_node,
                keys=join.keys,
                how=join.how,
                post_ops=ops[index + 1 : next_join],
            )
            index = next_join
        return node

    # -- introspection ----------------------------------------------------
    @property
    def has_join(self) -> bool:
        return isinstance(self.join_tree, JoinNode)

    def subquery(self, subid: int) -> SubQuery:
        return self.subqueries[subid]

    def output_schema(self) -> Schema:
        return self.stream.output_schema()

    def refinement_key_candidates(self) -> dict[int, list[str]]:
        """Candidates per sub-query id."""
        return {
            sq.subid: sq.refinement_key_candidates() for sq in self.subqueries
        }

    def describe(self) -> str:
        lines = [f"query {self.name} (qid={self.qid}, W={self.window}s)"]
        for sq in self.subqueries:
            lines.append(f"  sub{sq.subid}: {sq.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({self.name!r}, qid={self.qid}, subqueries={len(self.subqueries)})"
