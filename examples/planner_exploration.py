#!/usr/bin/env python
"""Exploring the query planner: what does each switch resource buy?

Sweeps one data-plane constraint at a time (as in Figure 8) for the
DDoS-detection query and prints the plan the ILP chooses — refinement
path, partitioning cut, and estimated stream-processor load — so you can
see the planner trade refinement depth against switch memory.

Run: python examples/planner_exploration.py
"""

from dataclasses import replace

from repro.evaluation.workloads import build_workload
from repro.planner import QueryPlanner
from repro.planner.ilp import PlanILP
from repro.queries.library import build_queries
from repro.switch.config import KB, MB, SwitchConfig


def main() -> None:
    names = ["ddos", "newly_opened_tcp_conns", "superspreader"]
    workload = build_workload(names, duration=15.0, pps=2_000)
    queries = build_queries(names)
    planner = QueryPlanner(queries, workload.trace, window=3.0, time_limit=15)
    costs = planner.costs()  # estimated once, reused for every sweep point

    base = SwitchConfig.paper_default()
    sweeps = {
        "register_bits_per_stage": [int(0.05 * MB), int(0.5 * MB), 8 * MB],
        "stages": [4, 8, 16],
        "stateful_actions_per_stage": [1, 2, 8],
    }

    for parameter, values in sweeps.items():
        print(f"\n=== sweeping {parameter} ===")
        for value in values:
            overrides = {parameter: value}
            if parameter == "register_bits_per_stage":
                overrides["max_single_register_bits"] = value
            config = replace(base, **overrides)
            plan = PlanILP(costs, config, mode="sonata", time_limit=15).solve()
            print(f"  {parameter} = {value}:")
            for qplan in plan.query_plans.values():
                path = " -> ".join(str(r) for r in ("*",) + qplan.path)
                cuts = {inst.key: inst.cut for inst in qplan.instances}
                print(
                    f"    {qplan.query.name:26} path {path:22} "
                    f"est {qplan.est_tuples_per_window:8.0f} tuples/window"
                )


if __name__ == "__main__":
    main()
