#!/usr/bin/env python
"""Network-wide detection across four border switches.

An ECMP fabric sprays traffic over four border switches, so a DDoS whose
network-wide source count crosses the threshold may never cross it at any
single switch. Each switch runs Sonata with its thresholds scaled by the
switch count; a central collector merges the per-switch partial aggregates
and applies the original thresholds — the paper's "network-wide heavy
hitter detection" future-work item (§8).

Run: python examples/network_wide_heavy_hitters.py
"""

from repro.evaluation.workloads import build_workload
from repro.network import NetworkRuntime, Topology
from repro.queries.library import build_queries
from repro.utils.iputil import format_ip

NAMES = ["newly_opened_tcp_conns", "ddos"]


def main() -> None:
    workload = build_workload(NAMES, duration=15.0, pps=2_500, seed=17)
    queries = build_queries(NAMES)
    topology = Topology.ecmp(4, seed=3)

    for scaled in (True, False):
        label = "scaled local thresholds" if scaled else "exact (no local thresholds)"
        net = NetworkRuntime(
            queries, topology, workload.trace, window=3.0,
            local_threshold_scale=scaled, time_limit=10,
        )
        report = net.run(workload.trace)
        print(f"\n=== {label} ===")
        print("window  per-switch tuples          collector tuples  detections")
        for w in report.windows:
            n_det = sum(len(rows) for rows in w.detections.values())
            print(
                f"{w.index:>6}  {str(w.switch_tuples):26} "
                f"{w.collector_tuples:>15}  {n_det}"
            )
        for qid, name in enumerate(NAMES, start=1):
            victim = workload.victims[name]
            hit = any(
                row.get("ipv4.dIP") == victim
                for _, q, row in report.detections()
                if q == qid
            )
            print(f"  {name}: victim {format_ip(victim)} detected = {hit}")
        print(
            f"  totals: {report.total_switch_tuples} tuples at local SPs, "
            f"{report.total_collector_tuples} rows to the central collector"
        )


if __name__ == "__main__":
    main()
