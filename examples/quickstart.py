#!/usr/bin/env python
"""Quickstart: write a telemetry query, plan it, and run it end to end.

This walks through the full Sonata workflow on a synthetic backbone trace
with a SYN-flood needle:

1. express the paper's Query 1 (newly opened TCP connections) in the
   declarative dataflow interface;
2. let the query planner partition (and, if worthwhile, refine) it against
   a simulated PISA switch using the trace as training data;
3. execute the plan window by window through the switch simulator, the
   emitter and the stream processor;
4. inspect detections and the load placed on the stream processor.

Run: python examples/quickstart.py
"""

from repro import PacketStream
from repro.core.expressions import Const
from repro.core.fields import TCP_SYN
from repro.core.query import Query
from repro.packets import BackboneConfig, Trace, attacks, generate_backbone
from repro.planner import QueryPlanner
from repro.runtime import SonataRuntime
from repro.utils.iputil import format_ip, parse_ip

VICTIM = parse_ip("203.0.113.7")


def main() -> None:
    # -- 1. a workload: backbone traffic plus a SYN flood ----------------
    backbone = generate_backbone(BackboneConfig(duration=15.0, pps=2_000))
    flood = attacks.syn_flood(VICTIM, start=0.0, duration=15.0, pps=150)
    trace = Trace.merge([backbone, flood])
    print(f"workload: {trace}")

    # -- 2. the paper's Query 1 ------------------------------------------
    query = Query(
        PacketStream(name="newly_opened_tcp_conns", qid=1, window=3.0)
        .filter(("tcp.flags", "eq", TCP_SYN))
        .map(keys=("ipv4.dIP",), values=(Const(1),))
        .reduce(keys=("ipv4.dIP",), func="sum")
        .filter(("count", "gt", 120))
    )
    print(query.describe())

    # -- 3. plan against a simulated PISA switch ---------------------------
    planner = QueryPlanner([query], trace, window=3.0)
    plan = planner.plan("sonata")
    print()
    print(plan.describe())

    # -- 4. execute --------------------------------------------------------
    runtime = SonataRuntime(plan)
    report = runtime.run(trace)

    print()
    print("window  packets  tuples->SP  detections")
    for window in report.windows:
        victims = ", ".join(
            format_ip(row["ipv4.dIP"]) for row in window.detections.get(1, [])
        )
        print(
            f"{window.index:>6}  {window.packets:>7}  "
            f"{window.total_tuples:>10}  {victims}"
        )

    total = report.total_tuples
    print()
    print(
        f"stream processor saw {total} tuples for {len(trace)} packets "
        f"({len(trace) / max(total, 1):.0f}x reduction vs mirroring everything)"
    )
    assert any(
        row["ipv4.dIP"] == VICTIM
        for window in report.windows
        for row in window.detections.get(1, [])
    ), "the planted SYN-flood victim must be detected"
    print(f"detected planted victim {format_ip(VICTIM)}")


if __name__ == "__main__":
    main()
