#!/usr/bin/env python
"""The Figure 9 case study: catching an IoT telnet attack in real time.

An attacker brute-forces telnet logins against one host starting at t=9s
and, after gaining shell access at t=19s, downloads a dropper whose
command line contains the keyword "zorro". The Zorro query (Query 3 of the
paper) joins a payload predicate — which no switch can evaluate — with an
in-switch aggregation of similar-sized telnet packets, and dynamic
refinement zooms from the whole address space to the victim /24 and then
the /32 before any payload byte is inspected.

Run: python examples/zorro_case_study.py
"""

from repro.evaluation.casestudy import figure9_case_study
from repro.utils.iputil import format_ip


def main() -> None:
    result = figure9_case_study(
        duration=24.0, pps=1_500.0, attack_start=9.0, shell_delay=10.0
    )
    print(result.describe())
    print()
    print(f"victim address: {format_ip(result.victim)}")
    print(
        "the stream processor needed only "
        f"{result.tuples_to_identify_victim} tuple(s) from the aggregation "
        "path to pinpoint the victim — everything else stayed in the data plane"
    )
    reduction = sum(result.received_per_window) / max(
        sum(result.reported_per_window), 1
    )
    print(f"overall tuple reduction across the run: {reduction:.0f}x")


if __name__ == "__main__":
    main()
