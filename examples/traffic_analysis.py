#!/usr/bin/env python
"""Traffic analysis toolkit: stats, flows, pcap export, custom query files.

Before planning telemetry queries, an operator inspects the training
traffic (§3.3 plans are only as good as the training data). This example
tours the analysis APIs around the core system:

- structural trace summaries (`repro.packets.stats`);
- flow-level aggregation and heavy hitters (`repro.packets.flows`);
- pcap export for standard tools (`repro.packets.pcap`);
- queries as version-controlled JSON (`repro.core.serialize`).

Run: python examples/traffic_analysis.py
"""

import json
import tempfile

from repro.core import query_from_dict, query_to_dict
from repro.packets import (
    BackboneConfig,
    Trace,
    attacks,
    generate_backbone,
    summarize,
    top_flows,
)
from repro.packets.pcap import read_pcap, write_pcap
from repro.queries.library import build_query


def main() -> None:
    backbone = generate_backbone(BackboneConfig(duration=8.0, pps=2_000))
    trace = Trace.merge(
        [backbone, attacks.ddos(0x0A0A0A0A, duration=8.0, n_sources=500)]
    )

    print("=== trace summary ===")
    print(summarize(trace).describe())

    print("\n=== top flows by bytes ===")
    for flow in top_flows(trace, count=5):
        print(" ", flow.describe())

    with tempfile.TemporaryDirectory() as tmp:
        pcap_path = f"{tmp}/sample.pcap"
        sample = trace.slice(slice(0, 1_000))
        write_pcap(pcap_path, sample.packets())
        back = read_pcap(pcap_path)
        print(f"\npcap round trip: wrote {len(sample)} packets, read {len(back)}")

        query = build_query("ddos", qid=1, Th=200)
        query_path = f"{tmp}/ddos_query.json"
        with open(query_path, "w") as fh:
            json.dump(query_to_dict(query), fh, indent=2)
        with open(query_path) as fh:
            restored = query_from_dict(json.load(fh))
        print(f"query JSON round trip: {restored.name} -> {restored.describe()}")


if __name__ == "__main__":
    main()
