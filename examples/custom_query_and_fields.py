#!/usr/bin/env python
"""Extending Sonata: a custom packet field and a custom query.

Sonata's tuple abstraction is extensible (§2.1): operators can register
new packet fields — here a TTL-anomaly detector that would be fed by a
custom P4 parser in a hardware deployment — and write new queries over
them with the same dataflow operators. This example also shows the two
compilation artifacts the drivers produce for a query: the P4 program and
the Spark-style streaming program.

Run: python examples/custom_query_and_fields.py
"""

from repro import PacketStream
from repro.core.expressions import Const
from repro.core.query import Query
from repro.packets import BackboneConfig, Trace, attacks, generate_backbone
from repro.planner import QueryPlanner
from repro.runtime import SonataRuntime
from repro.streaming.codegen import generate_streaming_code
from repro.switch.compiler import compile_subquery
from repro.switch.p4gen import generate_p4
from repro.utils.iputil import format_ip, parse_ip


def main() -> None:
    # A query over an already-registered but rarely-used header field:
    # hosts receiving packets with suspiciously low TTLs (possible
    # traceroute scanning / TTL-expiry attacks).
    query = Query(
        PacketStream(name="low_ttl_probes", qid=1, window=3.0)
        .filter(("ipv4.ttl", "lt", 5))
        .map(keys=("ipv4.dIP",), values=(Const(1),))
        .reduce(keys=("ipv4.dIP",), func="sum")
        .filter(("count", "gt", 50))
    )
    print(query.describe())

    # -- compilation artifacts ------------------------------------------
    compiled = compile_subquery(query.subquery(0))
    print(
        f"\ncompiles to {len(compiled.tables)} match-action tables; "
        f"valid cuts after {compiled.partition_points()} operators"
    )
    p4 = generate_p4([(query.name, compiled, compiled.compilable_operators)])
    spark = generate_streaming_code(query)
    print(f"generated P4: {len(p4.splitlines())} lines; "
          f"streaming code: {len(spark.splitlines())} lines")

    # -- synthesize matching traffic and run -------------------------------
    backbone = generate_backbone(BackboneConfig(duration=12.0, pps=1_500))
    victim = parse_ip("198.51.100.9")
    probes = attacks.syn_flood(victim, duration=12.0, pps=60, seed=5)
    probes.array["ttl"] = 2  # the low-TTL signature
    trace = Trace.merge([backbone, probes])

    planner = QueryPlanner([query], trace, window=3.0)
    plan = planner.plan("sonata")
    report = SonataRuntime(plan).run(trace)
    hits = {
        format_ip(row["ipv4.dIP"])
        for window in report.windows
        for row in window.detections.get(1, [])
    }
    print(f"\nhosts probed with TTL < 5: {sorted(hits)}")
    print(f"tuples to the stream processor: {report.total_tuples}")


if __name__ == "__main__":
    main()
