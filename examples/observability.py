#!/usr/bin/env python
"""Observability: metrics, trace spans and fault events for one run.

The `repro.obs` subsystem (DESIGN.md §9) watches the pipeline without
changing it: counters for every headline quantity, wall-clock spans for
every stage of every window, and structured events for the interesting
moments (fault injections, fallbacks, retrain signals). This example:

1. plans the DDoS query over an attacked backbone;
2. runs it with observability enabled *and* a seeded fault mix, so the
   trace records both normal stage timings and injected chaos;
3. renders the per-stage timing summary a human reads first;
4. walks the span tree of one window to show the nesting;
5. prints the fault-event log and checks it agrees with the fault
   counters and the run report;
6. exports the Prometheus snapshot + JSON-lines trace like the CLI's
   ``--metrics-out`` / ``--trace-out`` flags do.

Run: python examples/observability.py
"""

import json
import tempfile
from pathlib import Path

from repro.evaluation.workloads import build_workload
from repro.faults import FaultSpec
from repro.obs import Observability
from repro.obs.exporters import (
    parse_prometheus_text,
    print_summary,
    write_metrics,
    write_trace_jsonl,
)
from repro.planner import QueryPlanner
from repro.queries.library import build_query
from repro.runtime import SonataRuntime
from repro.utils.iputil import format_ip


def main() -> None:
    # -- 1. plan the DDoS query -------------------------------------------
    workload = build_workload(["ddos"], duration=9.0, pps=1_500, seed=7)
    victim = workload.victims["ddos"]
    print(f"workload: {workload.trace}, planted DDoS on {format_ip(victim)}")

    planner = QueryPlanner(
        [build_query("ddos", qid=1)], workload.trace, window=3.0, time_limit=15
    )
    plan = planner.plan("sonata")

    # -- 2. one observed run with faults injected -------------------------
    faults = FaultSpec(seed=42, mirror_drop=0.05)
    obs = Observability()
    report = SonataRuntime(plan, faults=faults, obs=obs).run(workload.trace)
    print(
        f"run: {len(report.windows)} windows, {report.total_tuples} tuples "
        f"to the stream processor, faults={report.total_faults()}"
    )

    # -- 3. the per-stage timing summary ----------------------------------
    print()
    print_summary(obs)

    # -- 4. the span tree of the first window ------------------------------
    first_window = obs.tracer.spans_named("window")[0]
    print("\nspan tree of window 0:")
    print(f"  window  ({first_window.duration * 1e3:.2f} ms)")
    for child in obs.tracer.children_of(first_window.span_id):
        print(f"    {child.name:24} {child.duration * 1e6:9.0f} µs")

    # -- 5. the fault-event log --------------------------------------------
    drops = obs.tracer.events_named("fault.mirror_drop")
    print(f"\nfault events ({len(drops)} mirror drops recorded):")
    for event in drops[:5]:
        print(f"  fault.mirror_drop  instance={event.attrs['instance']}")
    if len(drops) > 5:
        print(f"  ... and {len(drops) - 5} more")
    snapshot = report.metrics
    counted = snapshot.value(
        "sonata_faults_injected_total", channel="mirror_drop", scope=""
    )
    assert counted == len(drops) == report.total_faults()["mirror_drop"]
    print("fault events == fault counter == run-report accounting ✓")

    # -- 6. export like --metrics-out / --trace-out -------------------------
    outdir = Path(tempfile.mkdtemp(prefix="sonata-obs-"))
    write_metrics(snapshot, str(outdir / "metrics.prom"))
    n_records = write_trace_jsonl(obs, str(outdir / "trace.jsonl"))
    values = parse_prometheus_text((outdir / "metrics.prom").read_text())
    spans = [
        json.loads(line)
        for line in (outdir / "trace.jsonl").read_text().splitlines()
        if json.loads(line)["type"] == "span"
    ]
    print(
        f"\nexported {len(values)} metric series to {outdir / 'metrics.prom'}"
        f"\nexported {n_records} trace records ({len(spans)} spans) "
        f"to {outdir / 'trace.jsonl'}"
    )
    print(f"  sonata_packets_total = {values['sonata_packets_total']:.0f}")
    print(f"  sonata_windows_total = {values['sonata_windows_total']:.0f}")


if __name__ == "__main__":
    main()
