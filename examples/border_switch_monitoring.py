#!/usr/bin/env python
"""Operating a border switch: eight concurrent telemetry queries.

This is the paper's headline deployment scenario (§6.2): a border switch
runs the eight layer-3/4 queries of Table 3 at once and data-plane
resources have to be shared. The example:

- composes a workload where *every* query has a real needle planted;
- plans all eight queries jointly under each of the five query plans of
  Table 4 (All-SP .. Sonata) and compares the stream-processor load;
- executes the Sonata plan end to end and reports what each query caught.

Run: python examples/border_switch_monitoring.py
"""

from repro.evaluation.measure import evaluate_plan
from repro.evaluation.workloads import build_workload
from repro.planner import QueryPlanner
from repro.queries.library import QUERY_LIBRARY, TOP8, build_queries
from repro.runtime import SonataRuntime
from repro.utils.iputil import format_ip


def main() -> None:
    names = list(TOP8)
    workload = build_workload(names, duration=18.0, pps=3_000)
    queries = build_queries(names)
    print(f"workload: {workload.trace} with {len(names)} planted attacks")

    planner = QueryPlanner(queries, workload.trace, window=3.0, time_limit=20)

    print("\nstream-processor load by plan (tuples over the whole trace):")
    plans = {}
    for mode in ("all_sp", "filter_dp", "max_dp", "fix_ref", "sonata"):
        plan = planner.plan(mode)
        plans[mode] = plan
        measured = evaluate_plan(plan, workload.trace, 3.0)
        print(f"  {mode:10} {measured.total_tuples():>12,}")

    print("\nsonata refinement paths:")
    for qid, qplan in plans["sonata"].query_plans.items():
        path = " -> ".join(str(r) for r in ("*",) + qplan.path)
        print(f"  {qplan.query.name:28} {path}")

    print("\nrunning the Sonata plan end to end...")
    report = SonataRuntime(plans["sonata"]).run(workload.trace)
    print("query                          victim planted   detected")
    for qid, name in enumerate(names, start=1):
        spec = QUERY_LIBRARY[name]
        victim = workload.victims[name]
        hit = any(
            row.get(spec.victim_field) == victim
            for window in report.windows
            for row in window.detections.get(qid, [])
        )
        print(f"{name:28}  {format_ip(victim):>15}   {'yes' if hit else 'NO'}")


if __name__ == "__main__":
    main()
