#!/usr/bin/env python
"""Fault injection and graceful degradation across the pipeline.

The runtime of the paper assumes lossless, instantaneous channels between
the switch, the emitter and the collector. This example turns those
assumptions into dials (`repro.faults.FaultSpec`) and shows the
degradation machinery absorbing the damage:

1. run a SYN-flood workload fault-free to get the baseline detections;
2. re-run under a seeded chaos mix — mirrored-tuple loss/duplication/
   reordering, register-overflow pressure, lossy filter-table updates —
   and compare what was still detected, what was missed, and what the
   per-window accounting recorded;
3. push overflow pressure hard enough that the runtime pulls the
   instance off the switch and falls back to raw-mirror execution;
4. run network-wide with one of three border switches hard-failed and
   watch the collector's quorum merge (with the pigeonhole threshold
   correction) keep detecting the attack.

Run: python examples/fault_injection.py
"""

from repro.faults import DegradationPolicy, FaultSpec
from repro.network import NetworkRuntime, Topology
from repro.packets import BackboneConfig, Trace, attacks, generate_backbone
from repro.planner import QueryPlanner
from repro.queries.library import build_queries
from repro.runtime import SonataRuntime
from repro.utils.iputil import format_ip, parse_ip

VICTIM = parse_ip("203.0.113.7")


def detections_per_window(report, qid=1, field="ipv4.dIP"):
    return [
        {row[field] for row in w.detections.get(qid, [])} for w in report.windows
    ]


def main() -> None:
    # -- 1. workload and fault-free baseline ------------------------------
    backbone = generate_backbone(BackboneConfig(duration=12.0, pps=2_000, seed=7))
    flood = attacks.syn_flood(VICTIM, start=0.0, duration=12.0, pps=150, seed=2)
    trace = Trace.merge([backbone, flood])
    queries = build_queries(["newly_opened_tcp_conns"])
    plan = QueryPlanner(queries, trace, window=3.0, time_limit=15).plan("sonata")

    baseline = SonataRuntime(plan).run(trace)
    base_dets = detections_per_window(baseline)
    print(f"baseline: {baseline.total_tuples} tuples, "
          f"victim in {sum(VICTIM in d for d in base_dets)} windows")

    # -- 2. the same run under a seeded chaos mix --------------------------
    chaos = FaultSpec(
        seed=42,
        mirror_drop=0.10,        # 10% of mirrored tuples lost
        mirror_duplicate=0.05,   # 5% delivered twice
        mirror_reorder=0.20,     # 20% delayed to the end of the window...
        late_drop=0.25,          # ...a quarter of those miss the deadline
        overflow_pressure=0.05,  # forced register-chain overflows
        filter_update_loss=0.30, # lossy control plane (retried w/ backoff)
    )
    chaotic = SonataRuntime(plan, faults=chaos).run(trace)
    print(f"\nchaos:    {chaotic.total_tuples} tuples, "
          f"victim in {sum(VICTIM in d for d in detections_per_window(chaotic))} windows")
    print(f"faults injected: {chaotic.total_faults()}")
    print(f"degraded windows: {chaotic.degraded_windows}")
    for window in chaotic.windows:
        missed = base_dets[window.index] - {
            row["ipv4.dIP"] for row in window.detections.get(1, [])
        }
        if missed:
            print(f"  window {window.index}: missed "
                  f"{', '.join(format_ip(ip) for ip in sorted(missed))}")

    # Determinism: same spec + seed => identical run.
    again = SonataRuntime(plan, faults=chaos).run(trace)
    assert again.total_tuples == chaotic.total_tuples
    assert detections_per_window(again) == detections_per_window(chaotic)
    print("re-run with the same seed is identical (deterministic injection)")

    # -- 3. severe pressure: automatic raw-mirror fallback -----------------
    runtime = SonataRuntime(
        plan,
        faults=FaultSpec(seed=7, overflow_pressure=0.8),
        degradation=DegradationPolicy(fallback_overflow_threshold=0.3),
    )
    report = runtime.run(trace)
    events = [e for w in report.windows for e in w.degradation_events]
    print(f"\npressure: fallen back instances: {sorted(runtime.fallen_back)}")
    print(f"events: {[e for e in events if e.startswith('fallback:')]}")
    print(f"tuple cost with raw-mirror fallback: {report.total_tuples} "
          f"(vs {baseline.total_tuples} fully on-switch)")

    # -- 4. network-wide: 1 of 3 switches hard-failed ----------------------
    net = NetworkRuntime(
        queries,
        Topology.ecmp(3, seed=9),
        trace,
        window=3.0,
        time_limit=10,
        faults=FaultSpec(seed=1, switch_down=(1,)),
    )
    net_report = net.run(trace)
    found = any(
        row.get("ipv4.dIP") == VICTIM
        for _, qid, row in net_report.detections()
        if qid == 1
    )
    window = net_report.windows[0]
    print(f"\nnetwork-wide with switch 1 down: victim "
          f"{'detected' if found else 'missed'} via quorum merge")
    print(f"  missing switches: {window.missing_switches}, "
          f"threshold scale: {window.quorum_scale:.2f} "
          f"(pigeonhole correction, k/n = 2/3)")
    assert found, "quorum path should still catch the flood"


if __name__ == "__main__":
    main()
