#!/usr/bin/env python
"""Closed-loop reaction: detect a SYN flood, then drop it in the data plane.

The paper's stated long-term goal (§8) is to use Sonata "as a building
block for closed-loop reaction to network events". This example wires a
mitigation policy to the newly-opened-connections query: after the victim
is reported in two consecutive windows, the runtime installs an ingress
drop rule on the switch; when the (now invisible) attack stops being
detected, the rule ages out.

Run: python examples/closed_loop_mitigation.py
"""

from repro.packets import BackboneConfig, Trace, attacks, generate_backbone
from repro.planner import QueryPlanner
from repro.queries.library import build_query
from repro.runtime import SonataRuntime
from repro.runtime.reaction import MitigationPolicy, run_with_mitigation
from repro.utils.iputil import format_ip, parse_ip

VICTIM = parse_ip("203.0.113.50")


def main() -> None:
    backbone = generate_backbone(BackboneConfig(duration=24.0, pps=1_500))
    flood = attacks.syn_flood(VICTIM, start=3.0, duration=21.0, pps=200)
    trace = Trace.merge([backbone, flood])

    query = build_query("newly_opened_tcp_conns", qid=1, Th=150)
    planner = QueryPlanner([query], trace, window=3.0)
    runtime = SonataRuntime(planner.plan("sonata"))

    policy = MitigationPolicy(
        qid=1, field="ipv4.dIP", confirm_windows=2, ttl_windows=3
    )
    report, mitigator = run_with_mitigation(runtime, trace, [policy])

    print("window  tuples->SP  detections")
    for window in report.windows:
        victims = ",".join(
            format_ip(r["ipv4.dIP"]) for r in window.detections.get(1, [])
        )
        print(f"{window.index:>6}  {window.total_tuples:>10}  {victims or '-'}")

    print("\nmitigation log:")
    for event in mitigator.log:
        print(
            f"  window {event.window_index}: {event.action} "
            f"{event.field}={format_ip(event.value)}"
        )
    print(f"\npackets dropped in the data plane: {runtime.switch.packets_dropped}")


if __name__ == "__main__":
    main()
